// Command ccload replays a web trace against a live middleware cluster and
// reports throughput, latency percentiles, and cluster cache behaviour —
// the real-deployment counterpart of the simulator experiments.
//
// Three modes:
//
//	# drive an already-running cluster (see cmd/ccnode -serve)
//	ccload -cluster 127.0.0.1:7000,127.0.0.1:7001 -files 100 -avg 16384 \
//	       -requests 20000 -concurrency 16
//
//	# self-contained: start an in-process cluster and drive it
//	ccload -selftest -nodes 4 -capacity 512 -requests 20000
//
//	# benchmark presets: replay fixed workloads against in-process
//	# clusters and write BENCH_live.json (req/s, MB/s, latency percentiles)
//	ccload -bench
//
//	# chaos scenario: crash one node of four mid-replay under a seeded
//	# fault plan; the run must finish with zero client-visible errors and
//	# records the fault-handling counters into BENCH_live.json
//	ccload -chaos
//
//	# HTTP mode: replay over the full production path (keep-alive HTTP into
//	# an httpfront gateway that streams out of the cluster); in-process by
//	# default, or against a running gateway (ccnode -serve -http-addr)
//	ccload -http -connections 256 -requests 20000
//	ccload -http -http-url http://127.0.0.1:8080 -connections 10000 -requests 100000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/middleware"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccload: ")
	var (
		cluster     = flag.String("cluster", "", "comma-separated node addresses of a running cluster")
		selftest    = flag.Bool("selftest", false, "start an in-process cluster instead")
		bench       = flag.Bool("bench", false, "run the benchmark presets and write -benchout")
		chaos       = flag.Bool("chaos", false, "run the node-crash chaos scenario and record it in -benchout")
		resize      = flag.Bool("resize", false, "run the elastic-membership resize scenario (grow 4→8 mid-replay, drain back to 4) and record it in -benchout")
		writesBench = flag.Bool("writesbench", false, "run the write-latency A/B matrix (sync/async invalidation × healthy/slow peer) and record it in -benchout")
		scenario    = flag.String("scenario", "", "run one named protocol scenario with its expected-counter signature, or 'all' (full_hit, partial_hit, cold_miss, write_invalidate, flash_crowd, node_drain)")
		httpMode    = flag.Bool("http", false, "replay over HTTP through an httpfront gateway and record the 'http' section in -benchout")
		httpURL     = flag.String("http-url", "", "http mode: drive this running gateway (ccnode -serve -http-addr) instead of an in-process one; /httpstats is scraped for hand-off counters")
		connections = flag.Int("connections", 256, "http mode: concurrent keep-alive connections (closed-loop clients)")
		clfPath     = flag.String("clf", "", "http mode: replay this Common Log Format access log instead of the synthetic trace")
		benchOut    = flag.String("benchout", "BENCH_live.json", "benchmark result path (bench mode)")
		nNodes      = flag.Int("nodes", 4, "selftest cluster size")
		capacity    = flag.Int("capacity", 1024, "selftest per-node cache capacity in blocks")
		hints       = flag.Bool("hints", false, "selftest: hint-based directory")
		files       = flag.Int("files", 100, "synthetic file count (must match the running cluster's)")
		avg         = flag.Int64("avg", 16384, "synthetic average file size (must match the running cluster's)")
		requests    = flag.Int("requests", 10000, "requests to replay (also scales bench presets)")
		concurrency = flag.Int("concurrency", 16, "closed-loop clients")
		warmup      = flag.Float64("warmup", 0.3, "warmup fraction")
		writeFrac   = flag.Float64("writes", 0, "fraction of operations that are block writes")
		zipf        = flag.Float64("zipf", 0.85, "popularity skew of the replayed stream")
		zipfS       = flag.Float64("zipf-s", 0, "override the Zipf exponent everywhere, bench presets included (0: use -zipf / preset values)")
		seed        = flag.Int64("seed", 1, "workload seed")
		noRun       = flag.Bool("norun", false, "in-process clusters only: disable run-granular reads (legacy per-block fetch path, for A/B comparison)")
		flash       = flag.Bool("flash", false, "bench mode: run the flash-crowd preset (non-stationary trace, adaptive replication + admission)")
		flashAt     = flag.Float64("flash-at", 0.35, "flash window start as a fraction of the stream")
		flashDur    = flag.Float64("flash-dur", 0.5, "flash window length as a fraction of the stream")
		flashFiles  = flag.Int("flash-files", 24, "flash set size (cold files that capture the boost)")
		flashBoost  = flag.Float64("flash-boost", 0.7, "request probability mass the flash set captures")
		noReplicate = flag.Bool("noreplicate", false, "flash bench: run only the static PolicyMaster baseline arm (replication + admission off)")
		flashReps   = flag.Int("flash-reps", 3, "flash bench: alternating static/adaptive rounds (medians reported; >1 cancels host drift)")
		repThr      = flag.Float64("rep-threshold", flashReplicateThreshold, "flash bench: replication threshold (serve-rate score)")
		repFan      = flag.Int("rep-fanout", flashReplicaFanout, "flash bench: replica copies pushed per hot block")
		repEpoch    = flag.Duration("rep-epoch", flashHotnessEpoch, "flash bench: hotness decay epoch (reaction time of the adaptive layer)")
		admission   = flag.Bool("admission", true, "flash bench: TinyLFU admission filter on the adaptive cluster")
		interval    = flag.Duration("interval", 0, "time-series bucket width (0: 1s, 250ms in bench/chaos mode; negative: no time series)")
		traceDump   = flag.Bool("trace-dump", false, "after the replay, dump each node's protocol event trace as JSON (nodes must run with tracing on; -selftest attaches tracers)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
		mtxProfile  = flag.String("mutexprofile", "", "write a mutex-contention profile of the run to this path (bench mode: where the store shards pay off)")
		blkProfile  = flag.String("blockprofile", "", "write a blocking profile of the run to this path")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	defer obs.ContentionProfiles(*mtxProfile, *blkProfile)()

	if *bench && *flash {
		spec := trace.FlashSpec{At: *flashAt, Dur: *flashDur, Files: *flashFiles, Boost: *flashBoost}
		ad := flashAdaptiveCfg{threshold: *repThr, fanout: *repFan, epoch: *repEpoch, admission: *admission}
		if err := runFlashBench(*benchOut, *requests, *concurrency, *seed, benchInterval(*interval), *noReplicate, *flashReps, spec, ad, *zipfS); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *bench {
		if err := runBench(*benchOut, *requests, *concurrency, *seed, benchInterval(*interval), *noRun, *zipfS); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *chaos {
		if err := runChaos(*benchOut, *requests, *concurrency, *seed, benchInterval(*interval), *noRun); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *resize {
		if err := runResize(*benchOut, *requests, *concurrency, *seed, benchInterval(*interval)); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *writesBench {
		if err := runWritesBench(*benchOut, *requests, *concurrency, *seed, benchInterval(*interval)); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *scenario != "" {
		if err := runScenarios(*scenario, *requests, *concurrency, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *httpMode {
		alpha := *zipf
		if *zipfS > 0 {
			alpha = *zipfS
		}
		err := runHTTP(httpOpts{
			out:         *benchOut,
			url:         *httpURL,
			clf:         *clfPath,
			nodes:       *nNodes,
			capacity:    *capacity,
			hints:       *hints,
			files:       *files,
			avg:         *avg,
			requests:    *requests,
			connections: *connections,
			zipf:        alpha,
			seed:        *seed,
			warmup:      *warmup,
			interval:    *interval,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	sizes := fileSizes(*files, *avg)
	alpha := *zipf
	if *zipfS > 0 {
		alpha = *zipfS
	}

	var addrs []string
	var shutdown func()
	switch {
	case *selftest:
		mut := func(i int, cfg *middleware.Config) {
			cfg.NoRunReads = *noRun
			if *traceDump {
				cfg.Tracer = obs.NewTracer(0)
			}
		}
		var err error
		_, addrs, shutdown, err = startCluster(*nNodes, *capacity, *hints, sizes, mut)
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		log.Printf("selftest cluster: %v", addrs)
	case *cluster != "":
		for _, a := range strings.Split(*cluster, ",") {
			addrs = append(addrs, strings.TrimSpace(a))
		}
	default:
		log.Fatal("need -cluster, -selftest, or -bench")
	}

	client, err := middleware.DialCluster(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	res, err := loadgen.Replay(client, buildTrace(*files, sizes, *requests, alpha, *avg, *seed), loadgen.Config{
		Concurrency: *concurrency,
		WarmupFrac:  *warmup,
		WriteFrac:   *writeFrac,
		Interval:    *interval,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	if *traceDump {
		dumpTraces(client, len(addrs))
	}
}

// benchInterval applies the bench/chaos-mode default bucket width.
func benchInterval(flagged time.Duration) time.Duration {
	if flagged == 0 {
		return 250 * time.Millisecond
	}
	return flagged
}

// dumpTraces fetches every node's protocol event trace over the trace RPC
// and prints them as JSON lines.
func dumpTraces(client *middleware.Client, nNodes int) {
	enc := json.NewEncoder(os.Stdout)
	for i := 0; i < nNodes; i++ {
		d, err := client.NodeTrace(i)
		if err != nil {
			log.Printf("trace dump node %d: %v", i, err)
			continue
		}
		log.Printf("node %d: %d trace events retained (%d recorded)", i, len(d.Events), d.Total)
		if err := enc.Encode(d); err != nil {
			log.Printf("trace dump node %d: %v", i, err)
		}
	}
}

// fileSizes builds the deterministic synthetic file manifest shared by every
// mode (and by any separately started ccnode cluster with matching flags).
func fileSizes(files int, avg int64) map[block.FileID]int64 {
	sizes := make(map[block.FileID]int64, files)
	for f := 0; f < files; f++ {
		sizes[block.FileID(f)] = avg/2 + int64(f%7)*(avg/7)
	}
	return sizes
}

// startCluster brings up an in-process cluster and returns its nodes,
// addresses, and a shutdown function. mut, when non-nil, adjusts each
// node's Config before start (chaos mode sets fault plans and timeouts).
func startCluster(nNodes, capacity int, hints bool, sizes map[block.FileID]int64,
	mut func(i int, cfg *middleware.Config)) ([]*middleware.Node, []string, func(), error) {
	nodes := make([]*middleware.Node, 0, nNodes)
	addrs := make([]string, 0, nNodes)
	shutdown := func() {
		for _, n := range nodes {
			n.Close()
		}
	}
	for i := 0; i < nNodes; i++ {
		cfg := middleware.Config{
			ID: i, Hints: hints, CapacityBlocks: capacity,
			Policy: core.PolicyMaster,
			Source: middleware.NewMemSource(block.DefaultGeometry, sizes),
		}
		if mut != nil {
			mut(i, &cfg)
		}
		n, err := middleware.Start(cfg)
		if err != nil {
			shutdown()
			return nil, nil, nil, err
		}
		nodes = append(nodes, n)
		addrs = append(addrs, n.Addr())
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	return nodes, addrs, shutdown, nil
}

// buildTrace generates the replay stream over the cluster's file set.
func buildTrace(files int, sizes map[block.FileID]int64, requests int, zipf float64, avg, seed int64) *trace.Trace {
	preset := trace.Preset{
		Name:         "ccload",
		NumFiles:     files,
		FileSetBytes: totalBytes(sizes),
		NumRequests:  requests,
		AvgReqKB:     float64(avg) / 1024, // neutral: no size-popularity bias target
		Alpha:        zipf,
		SizeSigma:    0.01,
	}
	gen := preset.Generate(seed, 1.0)
	// Replace generated sizes with the cluster's actual manifest (the
	// generator produced a same-shape stream; only IDs matter here).
	tr := &trace.Trace{Name: "ccload", Requests: gen.Requests}
	for f := 0; f < files; f++ {
		tr.Files = append(tr.Files, trace.File{ID: block.FileID(f), Size: sizes[block.FileID(f)]})
	}
	return tr
}

func totalBytes(sizes map[block.FileID]int64) int64 {
	var sum int64
	for _, s := range sizes {
		sum += s
	}
	return sum
}

// --- benchmark presets ---

// benchPreset is one fixed live-cluster workload.
type benchPreset struct {
	Name      string  `json:"name"`
	Nodes     int     `json:"nodes"`
	Capacity  int     `json:"capacity_blocks"`
	Hints     bool    `json:"hints"`
	Files     int     `json:"files"`
	AvgSize   int64   `json:"avg_file_bytes"`
	Zipf      float64 `json:"zipf"`
	WriteFrac float64 `json:"write_frac"`
}

// benchRecord is one preset's measured outcome, serialized to BENCH_live.json.
type benchRecord struct {
	benchPreset
	Requests  int     `json:"requests"`
	Writes    int     `json:"writes"`
	Bytes     int64   `json:"bytes"`
	ElapsedMS float64 `json:"elapsed_ms"`
	ReqPerSec float64 `json:"req_per_sec"`
	MBPerSec  float64 `json:"mb_per_sec"`
	MeanUS    float64 `json:"mean_us"`
	P50US     float64 `json:"p50_us"`
	P95US     float64 `json:"p95_us"`
	P99US     float64 `json:"p99_us"`
	HitRate   float64 `json:"hit_rate"`
	Local     uint64  `json:"local_hits"`
	Remote    uint64  `json:"remote_hits"`
	Disk      uint64  `json:"disk_reads"`
	Forwards  uint64  `json:"forwards"`
	// WriteP50US/WriteP99US are the write-only latency percentiles (set when
	// the preset replays writes); SyncInvalidate and SlowPeer mark the arm of
	// a writes A/B run (ccload -writesbench). InvalBatched/InvalCatchups
	// count the invalidation bus's batched deliveries and gap repairs.
	WriteP50US     float64 `json:"write_p50_us,omitempty"`
	WriteP99US     float64 `json:"write_p99_us,omitempty"`
	SyncInvalidate bool    `json:"sync_invalidate,omitempty"`
	SlowPeer       bool    `json:"slow_peer,omitempty"`
	InvalBatched   uint64  `json:"inval_batched,omitempty"`
	InvalCatchups  uint64  `json:"inval_catchups,omitempty"`
	// NoRun marks an A/B run with the run-granular fast path disabled
	// (ccload -bench -norun); Runs/RunsDegraded count the run fetches the
	// cluster issued and how many fell back to per-block repair.
	NoRun        bool   `json:"no_run_reads,omitempty"`
	Runs         uint64 `json:"runs_issued"`
	RunsDegraded uint64 `json:"runs_degraded"`
	// Flash carries the non-stationary workload and adaptive-replication
	// parameters of a flash-crowd run (ccload -bench -flash); the replica
	// and admission counters show how far the adaptive layer engaged (all
	// zero on the -noreplicate static baseline).
	Flash            *flashMeta `json:"flash,omitempty"`
	ReplicasPushed   uint64     `json:"replicas_pushed,omitempty"`
	ReplicaHits      uint64     `json:"replica_hits,omitempty"`
	AdmissionRejects uint64     `json:"admission_rejects,omitempty"`
	faultCounters
	// Intervals is the measured window's per-interval time series (req/s,
	// MB/s, latency percentiles, client fault deltas per bucket).
	Intervals []loadgen.Interval `json:"intervals,omitempty"`
}

// faultCounters are the fault-handling counters shared by the benchmark and
// chaos records (zero on healthy runs; the chaos scenario requires most of
// them nonzero).
type faultCounters struct {
	RPCTimeouts     uint64 `json:"rpc_timeouts"`
	RPCRetries      uint64 `json:"rpc_retries"`
	RPCFailures     uint64 `json:"rpc_failures"`
	BreakerOpens    uint64 `json:"breaker_opens"`
	BreakerSkips    uint64 `json:"breaker_skips"`
	HomeFallbacks   uint64 `json:"home_fallbacks"`
	StaleDrops      uint64 `json:"stale_drops"`
	InvalidateSkips uint64 `json:"invalidate_skips"`
	ClientTimeouts  uint64 `json:"client_timeouts"`
	ClientFailovers uint64 `json:"client_failovers"`
	ClientSkips     uint64 `json:"client_breaker_skips"`
}

// faultCountersOf collects the counters from a replay result.
func faultCountersOf(res loadgen.Result) faultCounters {
	c := res.Cluster
	return faultCounters{
		RPCTimeouts:     c.RPCTimeouts,
		RPCRetries:      c.RPCRetries,
		RPCFailures:     c.RPCFailures,
		BreakerOpens:    c.BreakerOpens,
		BreakerSkips:    c.BreakerSkips,
		HomeFallbacks:   c.HomeFallbacks,
		StaleDrops:      c.StaleDrops,
		InvalidateSkips: c.InvalidateSkips,
		ClientTimeouts:  res.Fault.Timeouts,
		ClientFailovers: res.Fault.Failovers,
		ClientSkips:     res.Fault.BreakerSkips,
	}
}

// chaosRecord is the chaos scenario's outcome, stored beside the presets in
// the benchmark document.
type chaosRecord struct {
	Nodes     int     `json:"nodes"`
	CrashNode int     `json:"crash_node"`
	Seed      int64   `json:"seed"`
	Requests  int     `json:"requests"`
	Writes    int     `json:"writes"`
	Errors    int     `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50US     float64 `json:"p50_us"`
	P95US     float64 `json:"p95_us"`
	P99US     float64 `json:"p99_us"`
	// Runs/RunsDegraded count run fetches issued and degraded during the
	// storm — degradations are expected here (the crashed node's runs fall
	// back per-block), never errors.
	Runs         uint64 `json:"runs_issued"`
	RunsDegraded uint64 `json:"runs_degraded"`
	// The membership layer's response to the crash: failed heartbeat
	// probes, the epoch after the dead promotion, and the blocks the
	// survivors pulled while re-homing the dead node's ring slice.
	HeartbeatFailures uint64 `json:"heartbeat_failures"`
	MembershipEpoch   uint64 `json:"membership_epoch"`
	RebalancedBlocks  uint64 `json:"rebalanced_blocks"`
	faultCounters
	// Intervals localizes the crash in time: the buckets around the crash
	// show the latency spike and the fault-counter deltas of the recovery.
	Intervals []loadgen.Interval `json:"intervals,omitempty"`
	// TraceEvents counts the protocol trace events recorded across the
	// cluster during the run, by kind; TraceTotal is their sum (events the
	// rings overwrote included). Correlates with the fault counters: e.g.
	// breaker_open events ≈ BreakerOpens.
	TraceEvents map[string]uint64 `json:"trace_events,omitempty"`
	TraceTotal  uint64            `json:"trace_total,omitempty"`
}

// benchDoc is the BENCH_live.json document. Bench and chaos runs each
// rewrite their own section and preserve the others'. A `-bench -norun` run
// fills PresetsPerBlock instead of Presets, so the document carries the
// run-path/per-block before-and-after side by side.
type benchDoc struct {
	Generated string `json:"generated"`
	// GoMaxProcs/NumCPU/GoVersion record the machine behind the numbers:
	// contention-sensitive results (the sharded store, writev batching) are
	// only comparable between runs at equal NumCPU, and the 1-CPU CI
	// container legitimately reports lower throughput than a dev box.
	GoMaxProcs      int           `json:"gomaxprocs"`
	NumCPU          int           `json:"num_cpu"`
	GoVersion       string        `json:"go_version"`
	Requests        int           `json:"requests_per_preset"`
	Presets         []benchRecord `json:"presets"`
	PresetsPerBlock []benchRecord `json:"presets_per_block,omitempty"`
	// FlashAdaptive/FlashStatic are the flash-crowd A/B: the same
	// non-stationary trace replayed with adaptive replication + admission
	// on (`-bench -flash`) and off (`-bench -flash -noreplicate`).
	FlashAdaptive []benchRecord `json:"flash_adaptive,omitempty"`
	FlashStatic   []benchRecord `json:"flash_static,omitempty"`
	// Writes is the write-latency A/B matrix (ccload -writesbench):
	// {sync fan-out, async bus} × {healthy, one slow peer}, on a
	// write-heavy preset. The async/slow arm is the bus's reason to exist —
	// the slow peer's delay must vanish from the writer's percentiles.
	Writes []benchRecord `json:"writes,omitempty"`
	Chaos  *chaosRecord  `json:"chaos,omitempty"`
	// Resize is the elastic-membership scenario (ccload -resize): the
	// cluster grows 4→8 mid-replay and drains back to 4, with zero
	// client-visible errors and the hit-rate dip localized in Intervals.
	Resize *resizeRecord `json:"resize,omitempty"`
	// HTTP is the end-to-end serving-path replay (ccload -http): keep-alive
	// HTTP connections into an httpfront gateway streaming out of the
	// cluster, with the gateway's hand-off counters alongside.
	HTTP *httpRecord `json:"http,omitempty"`
}

// loadBenchDoc reads an existing benchmark document; a missing or
// unparsable file yields an empty one.
func loadBenchDoc(path string) benchDoc {
	var doc benchDoc
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &doc)
	}
	return doc
}

func writeBenchDoc(path string, doc benchDoc) error {
	doc.Generated = time.Now().UTC().Format(time.RFC3339)
	doc.GoMaxProcs = runtime.GOMAXPROCS(0)
	doc.NumCPU = runtime.NumCPU()
	doc.GoVersion = runtime.Version()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s", path)
	return nil
}

// benchPresets are the standing live-cluster benchmarks. All use a four-node
// cluster; the capacity is chosen so the aggregate cache holds the working
// set while a single node's cache cannot — the regime where cooperation pays
// (the paper's §4 configuration, scaled down to benchmark duration).
var benchPresets = []benchPreset{
	{Name: "read-central-4node", Nodes: 4, Capacity: 512, Files: 200, AvgSize: 16384, Zipf: 0.85},
	{Name: "read-hints-4node", Nodes: 4, Capacity: 512, Hints: true, Files: 200, AvgSize: 16384, Zipf: 0.85},
	{Name: "mixed-writes-4node", Nodes: 4, Capacity: 512, Files: 200, AvgSize: 16384, Zipf: 0.85, WriteFrac: 0.05},
}

// runBench replays every preset against a fresh in-process cluster and
// writes the results to out. zipfS > 0 overrides every preset's skew.
func runBench(out string, requests, concurrency int, seed int64, interval time.Duration, noRun bool, zipfS float64) error {
	var mut func(i int, cfg *middleware.Config)
	if noRun {
		mut = func(i int, cfg *middleware.Config) { cfg.NoRunReads = true }
	}
	records := make([]benchRecord, 0, len(benchPresets))
	for _, p := range benchPresets {
		if zipfS > 0 {
			p.Zipf = zipfS
		}
		sizes := fileSizes(p.Files, p.AvgSize)
		_, addrs, shutdown, err := startCluster(p.Nodes, p.Capacity, p.Hints, sizes, mut)
		if err != nil {
			return fmt.Errorf("preset %s: %w", p.Name, err)
		}
		client, err := middleware.DialCluster(addrs)
		if err != nil {
			shutdown()
			return fmt.Errorf("preset %s: %w", p.Name, err)
		}
		tr := buildTrace(p.Files, sizes, requests, p.Zipf, p.AvgSize, seed)
		res, err := loadgen.Replay(client, tr, loadgen.Config{
			Concurrency: concurrency,
			WriteFrac:   p.WriteFrac,
			Interval:    interval,
		})
		client.Close()
		shutdown()
		if err != nil {
			return fmt.Errorf("preset %s: %w", p.Name, err)
		}
		rec := recordOf(p, res)
		rec.NoRun = noRun
		records = append(records, rec)
		log.Printf("%-20s %8.0f req/s %7.1f MB/s p50=%v p95=%v p99=%v hit=%.1f%%",
			p.Name, rec.ReqPerSec, rec.MBPerSec,
			res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond),
			res.P99.Round(time.Microsecond), rec.HitRate*100)
	}
	doc := loadBenchDoc(out)
	doc.Requests = requests
	if noRun {
		doc.PresetsPerBlock = records
	} else {
		doc.Presets = records
	}
	return writeBenchDoc(out, doc)
}

// recordOf maps one replay result onto the serialized benchmark record.
func recordOf(p benchPreset, res loadgen.Result) benchRecord {
	rec := benchRecord{
		benchPreset:      p,
		Requests:         res.Requests,
		Writes:           res.Writes,
		Bytes:            res.Bytes,
		ElapsedMS:        float64(res.Elapsed) / float64(time.Millisecond),
		ReqPerSec:        res.Throughput,
		MBPerSec:         res.MBps,
		MeanUS:           float64(res.Mean) / float64(time.Microsecond),
		P50US:            float64(res.P50) / float64(time.Microsecond),
		P95US:            float64(res.P95) / float64(time.Microsecond),
		P99US:            float64(res.P99) / float64(time.Microsecond),
		HitRate:          res.Cluster.HitRate(),
		Local:            res.Cluster.LocalHits,
		Remote:           res.Cluster.RemoteHits,
		Disk:             res.Cluster.DiskReads,
		Forwards:         res.Cluster.Forwards,
		Runs:             res.Cluster.RunsIssued,
		RunsDegraded:     res.Cluster.RunsDegraded,
		ReplicasPushed:   res.Cluster.ReplicasPushed,
		ReplicaHits:      res.Cluster.ReplicaHits,
		AdmissionRejects: res.Cluster.AdmissionRejects,
		WriteP50US:       float64(res.WriteP50) / float64(time.Microsecond),
		WriteP99US:       float64(res.WriteP99) / float64(time.Microsecond),
		InvalBatched:     res.Cluster.InvalBatched,
		InvalCatchups:    res.Cluster.InvalCatchups,
		Intervals:        res.Intervals,
	}
	rec.faultCounters = faultCountersOf(res)
	return rec
}

// --- flash-crowd benchmark ---

// flashMeta records the non-stationary workload and the adaptive
// configuration it ran against, so an A/B pair in the document is
// self-describing.
type flashMeta struct {
	trace.FlashSpec
	ReplicateThreshold float64 `json:"replicate_threshold,omitempty"`
	ReplicaFanout      int     `json:"replica_fanout,omitempty"`
	HotnessEpochMS     float64 `json:"hotness_epoch_ms,omitempty"`
	AdmissionFilter    bool    `json:"admission_filter"`
	Static             bool    `json:"static_baseline,omitempty"`
}

// flashPreset is the standing flash-crowd workload: a four-node cluster, a
// skewed base stream, and one scheduled flash crowd that captures most of
// the request mass mid-run. The capacity leaves slack beyond the singlet
// working set — replication needs room: with aggregate capacity below the
// working set, every pushed copy evicts something the cluster needed, and
// the measured adaptive layer goes negative (the paper's argument for
// singlet preservation, reproduced). Writes are the scenario's teeth: a
// write invalidates every cached copy cluster-wide, demand caching cannot
// pre-warm peers, and the post-write re-fetch storm is what the
// rate-limited repush path pre-empts. The threshold and epoch are tuned so
// a flash-hot block promotes within one or two epochs off the
// post-invalidation serve burst (a handful of serves, not a sustained
// rate), and fanout 2 keeps the push payload cost under the refetch savings.
//
// WriteFrac sets the economics of a push: a pushed replica only pays for
// itself while it lives, and the next write to its block tears it down. At
// 10% writes a flash-hot block sees ~10 reads per write cycle (~3 per peer
// cache), so each push earns ~3 replica hits — above the ~2-hit break-even
// where the push round (payload + replica-set op) costs more frames than
// the remote fetches it saves. At 25% writes the measured ratio drops to
// ~1.7 and the adaptive layer loses its whole margin to push churn.
var flashPreset = benchPreset{
	Name: "flash-crowd-4node", Nodes: 4, Capacity: 256,
	Files: 300, AvgSize: 16384, Zipf: 0.9, WriteFrac: 0.1,
}

const (
	flashReplicateThreshold = 4.0
	flashReplicaFanout      = 2
	flashHotnessEpoch       = 50 * time.Millisecond
)

// flashAdaptiveCfg carries the tunable adaptive knobs of a flash bench run.
type flashAdaptiveCfg struct {
	threshold float64
	fanout    int
	epoch     time.Duration
	admission bool
}

// runFlashBench builds the flash-crowd A/B: the same non-stationary trace
// replayed against fresh clusters with the adaptive layer off (static
// PolicyMaster baseline) and on, alternating static/adaptive for reps
// rounds inside one process. Alternation matters: single-CPU benchmark
// hosts drift by ±10-15% on a timescale of minutes, so two separate
// invocations mostly measure the drift; back-to-back arms share it, and the
// per-arm medians over a few rounds cancel most of the rest. With
// staticOnly only the baseline arm runs (refreshing flash_static while
// preserving flash_adaptive in the document).
func runFlashBench(out string, requests, concurrency int, seed int64, interval time.Duration, staticOnly bool, reps int, spec trace.FlashSpec, ad flashAdaptiveCfg, zipfS float64) error {
	p := flashPreset
	if zipfS > 0 {
		p.Zipf = zipfS
	}
	if reps < 1 {
		reps = 1
	}
	var statics, adaptives []benchRecord
	for r := 0; r < reps; r++ {
		// Alternate which arm goes first: throughput ramps over a process's
		// first seconds (scheduler/cache warmup), so a fixed order would
		// systematically favor the second arm.
		order := []bool{true, false}
		if r%2 == 1 {
			order = []bool{false, true}
		}
		for _, static := range order {
			if staticOnly && !static {
				continue
			}
			rec, err := runFlashArm(p, requests, concurrency, seed, interval, static, spec, ad)
			if err != nil {
				return err
			}
			if static {
				statics = append(statics, rec)
			} else {
				adaptives = append(adaptives, rec)
			}
		}
	}

	doc := loadBenchDoc(out)
	doc.FlashStatic = statics
	if !staticOnly {
		doc.FlashAdaptive = adaptives
		s, a := medianRecord(statics), medianRecord(adaptives)
		log.Printf("flash A/B medians (%d rounds): static %8.0f req/s p99=%.2fms | adaptive %8.0f req/s p99=%.2fms",
			reps, s.ReqPerSec, s.P99US/1000, a.ReqPerSec, a.P99US/1000)
	}
	return writeBenchDoc(out, doc)
}

// runFlashArm replays the flash trace once against a fresh cluster with the
// adaptive layer on or off and returns the result record.
func runFlashArm(p benchPreset, requests, concurrency int, seed int64, interval time.Duration, static bool, spec trace.FlashSpec, ad flashAdaptiveCfg) (benchRecord, error) {
	meta := &flashMeta{FlashSpec: spec, Static: static}
	mut := func(i int, cfg *middleware.Config) {}
	if !static {
		meta.ReplicateThreshold = ad.threshold
		meta.ReplicaFanout = ad.fanout
		meta.HotnessEpochMS = float64(ad.epoch) / float64(time.Millisecond)
		meta.AdmissionFilter = ad.admission
		mut = func(i int, cfg *middleware.Config) {
			cfg.ReplicateThreshold = ad.threshold
			cfg.ReplicaFanout = ad.fanout
			cfg.HotnessEpoch = ad.epoch
			cfg.AdmissionFilter = ad.admission
		}
	}

	sizes := fileSizes(p.Files, p.AvgSize)
	_, addrs, shutdown, err := startCluster(p.Nodes, p.Capacity, p.Hints, sizes, mut)
	if err != nil {
		return benchRecord{}, fmt.Errorf("flash: %w", err)
	}
	defer shutdown()
	client, err := middleware.DialCluster(addrs)
	if err != nil {
		return benchRecord{}, fmt.Errorf("flash: %w", err)
	}
	defer client.Close()

	tr := buildFlashTrace(p.Files, sizes, requests, p.Zipf, p.AvgSize, seed, spec)
	res, err := loadgen.Replay(client, tr, loadgen.Config{
		Concurrency: concurrency,
		WriteFrac:   p.WriteFrac,
		Interval:    interval,
	})
	if err != nil {
		return benchRecord{}, fmt.Errorf("flash: %w", err)
	}
	rec := recordOf(p, res)
	rec.Flash = meta
	mode := "adaptive"
	if static {
		mode = "static"
	}
	log.Printf("%-20s %-8s %8.0f req/s %7.1f MB/s p50=%v p95=%v p99=%v hit=%.1f%% pushed=%d replica_hits=%d rejects=%d",
		p.Name, mode, rec.ReqPerSec, rec.MBPerSec,
		res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond),
		res.P99.Round(time.Microsecond), rec.HitRate*100,
		rec.ReplicasPushed, rec.ReplicaHits, rec.AdmissionRejects)
	return rec, nil
}

// medianRecord picks the record with the median throughput of a non-empty
// run set — a whole real run, not a synthetic mix of percentiles.
func medianRecord(recs []benchRecord) benchRecord {
	sorted := append([]benchRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ReqPerSec < sorted[j].ReqPerSec })
	return sorted[len(sorted)/2]
}

// buildFlashTrace is buildTrace with the flash-crowd schedule applied: same
// file manifest, same base skew, one scheduled popularity shift.
func buildFlashTrace(files int, sizes map[block.FileID]int64, requests int, zipf float64, avg, seed int64, spec trace.FlashSpec) *trace.Trace {
	gen := trace.NonStationary{
		Base: trace.Preset{
			Name:         "ccload-flash",
			NumFiles:     files,
			FileSetBytes: totalBytes(sizes),
			NumRequests:  requests,
			AvgReqKB:     float64(avg) / 1024,
			Alpha:        zipf,
			SizeSigma:    0.01,
		},
		Flashes: []trace.FlashSpec{spec},
	}.Generate(seed, 1.0)
	tr := &trace.Trace{Name: "ccload-flash", Requests: gen.Requests}
	for f := 0; f < files; f++ {
		tr.Files = append(tr.Files, trace.File{ID: block.FileID(f), Size: sizes[block.FileID(f)]})
	}
	return tr
}

// --- chaos scenario ---

// runChaos replays a read-heavy trace against a four-node ring cluster
// under a seeded fault plan (small injected delays) and crashes one node
// halfway through the replay. The cluster is sized so no single node holds
// the working set — the crashed node holds master copies other nodes
// depend on, which is exactly what the fallback path must absorb. Nothing
// is excluded from the trace: requests for files homed at the crashed node
// are first bridged by the ring-successor fallback, then the survivors'
// heartbeats promote the crash to dead and re-home its ring slice for
// good. The run must finish with zero client-visible errors, and the
// fault-handling and membership counters it records must be nonzero.
func runChaos(out string, requests, concurrency int, seed int64, interval time.Duration, noRun bool) error {
	const (
		nNodes    = 4
		crashNode = nNodes - 1 // never the coordinator (lowest alive ID)
		capacity  = 128        // << working set: cooperation (and peer fetches) required
		files     = 200
		avgSize   = 16384
	)
	// Delays model a congested link; the drop rate is low enough that a
	// client-visible failure would need a same-request drop streak across
	// every node-side retry AND every client failover (p ≈ 1e-12), but
	// high enough that a run reliably exercises the timeout+retry path —
	// the crash alone produces fast connection resets, not timeouts.
	plan := &middleware.FaultPlan{
		Seed:      seed,
		DelayProb: 0.05,
		Delay:     500 * time.Microsecond,
		DropProb:  0.004,
	}
	sizes := fileSizes(files, avgSize)
	// Each node gets a protocol tracer: after the run the event counts are
	// recorded beside the fault counters (and stay readable even for the
	// crashed node, whose tracer outlives its sockets in-process).
	tracers := make([]*obs.Tracer, nNodes)
	nodes, addrs, shutdown, err := startCluster(nNodes, capacity, false, sizes,
		func(i int, cfg *middleware.Config) {
			cfg.Fault = plan
			cfg.NoRunReads = noRun
			cfg.RPCTimeout = 300 * time.Millisecond
			cfg.Retries = 2
			// Aggressive heartbeats so the crash is suspected and promoted
			// to dead well inside the replay (the successor fallback covers
			// the window in between). DeadTimeout must comfortably exceed
			// the RPC timeout: under injected delays a live peer's probe can
			// pay the full timeout, and dead is terminal — only the truly
			// crashed node may cross the threshold.
			cfg.HeartbeatInterval = 25 * time.Millisecond
			cfg.SuspectTimeout = 100 * time.Millisecond
			cfg.DeadTimeout = time.Second
			tracers[i] = obs.NewTracer(0)
			cfg.Tracer = tracers[i]
		})
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	defer shutdown()
	client, err := middleware.DialClusterConfig(addrs, middleware.ClientConfig{
		RPCTimeout: 2 * time.Second,
		Retries:    3,
	})
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	defer client.Close()

	// The whole trace replays — files homed at the crashed node included.
	// Their reads ride the ring-successor fallback until the heartbeat
	// layer promotes the crash to dead and re-homes the slice (every node's
	// source holds the full manifest, so the successor serves from its own
	// baseline when the dead home can't be pulled from).
	tr := buildTrace(files, sizes, requests, 0.85, avgSize, seed)

	crashAt := len(tr.Requests) / 2
	log.Printf("chaos: %d nodes, crashing node %d at request %d/%d (seed %d)",
		nNodes, crashNode, crashAt, len(tr.Requests), seed)
	res, err := loadgen.Replay(client, tr, loadgen.Config{
		Concurrency: concurrency,
		WarmupFrac:  0.1,
		WriteFrac:   0.05,
		Interval:    interval,
		Breakpoint:  crashAt,
		OnBreakpoint: func() {
			log.Printf("chaos: crashing node %d", crashNode)
			nodes[crashNode].Close()
		},
	})
	if err != nil {
		return fmt.Errorf("chaos: client-visible failure: %w", err)
	}
	fmt.Println(res)

	fc := faultCountersOf(res)
	if fc.RPCTimeouts+fc.BreakerSkips+fc.HomeFallbacks == 0 {
		return fmt.Errorf("chaos: crash produced no node-side fault events — the scenario did not exercise the fallback path")
	}
	if fc.ClientFailovers == 0 {
		return fmt.Errorf("chaos: no client failovers recorded — entry-node failover was not exercised")
	}
	if res.Cluster.HeartbeatFailures == 0 {
		return fmt.Errorf("chaos: no heartbeat failures recorded around a crash — the failure detector never fired")
	}
	if res.Cluster.MembershipEpoch < 2 {
		return fmt.Errorf("chaos: membership epoch %d — the crash was never promoted to dead", res.Cluster.MembershipEpoch)
	}

	traceEvents := make(map[string]uint64)
	var traceTotal uint64
	for _, t := range tracers {
		for _, e := range t.Events() {
			traceEvents[e.Kind]++
		}
		traceTotal += t.Total()
	}
	log.Printf("chaos: %d trace events recorded across the cluster: %v", traceTotal, traceEvents)

	doc := loadBenchDoc(out)
	doc.Chaos = &chaosRecord{
		Nodes:     nNodes,
		CrashNode: crashNode,
		Seed:      seed,
		Requests:  res.Requests,
		Writes:    res.Writes,
		Errors:    res.Errors,
		ElapsedMS: float64(res.Elapsed) / float64(time.Millisecond),
		ReqPerSec: res.Throughput,
		P50US:     float64(res.P50) / float64(time.Microsecond),
		P95US:     float64(res.P95) / float64(time.Microsecond),
		P99US:     float64(res.P99) / float64(time.Microsecond),

		Runs:         res.Cluster.RunsIssued,
		RunsDegraded: res.Cluster.RunsDegraded,

		HeartbeatFailures: res.Cluster.HeartbeatFailures,
		MembershipEpoch:   res.Cluster.MembershipEpoch,
		RebalancedBlocks:  res.Cluster.RebalancedBlocks,

		faultCounters: fc,
		Intervals:     res.Intervals,
		TraceEvents:   traceEvents,
		TraceTotal:    traceTotal,
	}
	return writeBenchDoc(out, doc)
}

// --- write-latency A/B matrix ---

// writesPreset is the write-heavy workload of the invalidation-bus A/B: a
// four-node cluster where every fourth request is a block write. 25% writes
// is past the point where the flash bench's adaptive layer pays (see
// flashPreset), which makes it exactly the regime where write latency is
// the product — there is no replica margin left to hide a slow fan-out in.
var writesPreset = benchPreset{
	Name: "writes-25pct-4node", Nodes: 4, Capacity: 512,
	Files: 200, AvgSize: 16384, Zipf: 0.85, WriteFrac: 0.25,
}

const (
	// writesSlowNode is the degraded peer of the slow arms. It is not an
	// entry node and homes no replayed file, so its delay can reach the
	// writer's latency only through the invalidation protocol.
	writesSlowNode   = 3
	writesRPCTimeout = 300 * time.Millisecond
	writesSlowDelay  = writesRPCTimeout / 2
)

// runWritesBench measures the same write-heavy replay over the four arms of
// {synchronous fan-out, asynchronous bus} × {healthy, one slow peer} and
// records them in the document's writes section. The matrix is the bus's
// acceptance test: with a peer delaying every frame by half the RPC timeout,
// the sync arm's write tail absorbs the delay wholesale while the async
// arm's must stay within sight of healthy.
func runWritesBench(out string, requests, concurrency int, seed int64, interval time.Duration) error {
	arms := []struct{ syncInval, slow bool }{
		{true, false}, {false, false}, {true, true}, {false, true},
	}
	records := make([]benchRecord, 0, len(arms))
	for _, arm := range arms {
		rec, err := runWritesArm(requests, concurrency, seed, interval, arm.syncInval, arm.slow)
		if err != nil {
			return err
		}
		records = append(records, rec)
	}
	pick := func(syncInval, slow bool) benchRecord {
		for _, r := range records {
			if r.SyncInvalidate == syncInval && r.SlowPeer == slow {
				return r
			}
		}
		return benchRecord{}
	}
	ss, as := pick(true, true), pick(false, true)
	if as.WriteP99US > 0 {
		log.Printf("writes A/B: slow-peer write p99 sync=%.0fµs async=%.0fµs (%.1fx)",
			ss.WriteP99US, as.WriteP99US, ss.WriteP99US/as.WriteP99US)
	}
	sh, ah := pick(true, false), pick(false, false)
	if ah.WriteP50US > 0 {
		log.Printf("writes A/B: healthy write p50 sync=%.0fµs async=%.0fµs",
			sh.WriteP50US, ah.WriteP50US)
	}
	doc := loadBenchDoc(out)
	doc.Writes = records
	return writeBenchDoc(out, doc)
}

// runWritesArm replays the writes preset once against a fresh cluster with
// the given invalidation mode and peer health.
func runWritesArm(requests, concurrency int, seed int64, interval time.Duration, syncInval, slow bool) (benchRecord, error) {
	p := writesPreset
	plan := &middleware.FaultPlan{Seed: seed, DelayProb: 1, Delay: writesSlowDelay}
	mut := func(i int, cfg *middleware.Config) {
		// The matrix's manifest filter excludes the slow peer's homed files
		// by modulo: pin the static placement so the filter stays exact.
		cfg.StaticHome = true
		cfg.SyncInvalidate = syncInval
		cfg.RPCTimeout = writesRPCTimeout
		cfg.Retries = 2
		if slow && i == writesSlowNode {
			cfg.Fault = plan
		}
	}
	sizes := fileSizes(p.Files, p.AvgSize)
	_, addrs, shutdown, err := startCluster(p.Nodes, p.Capacity, p.Hints, sizes, mut)
	if err != nil {
		return benchRecord{}, fmt.Errorf("writes bench: %w", err)
	}
	defer shutdown()
	// Entry nodes exclude the slow peer, and so does the file manifest of
	// the replay (its homed files would put the delay on the write-through
	// path of both arms, drowning the fan-out difference being measured).
	client, err := middleware.DialClusterConfig(addrs[:writesSlowNode], middleware.ClientConfig{
		RPCTimeout: 2 * time.Second,
		Retries:    3,
	})
	if err != nil {
		return benchRecord{}, fmt.Errorf("writes bench: %w", err)
	}
	defer client.Close()
	tr := buildTrace(p.Files, sizes, requests, p.Zipf, p.AvgSize, seed)
	kept := tr.Requests[:0]
	for _, f := range tr.Requests {
		if int(f)%p.Nodes != writesSlowNode {
			kept = append(kept, f)
		}
	}
	tr.Requests = kept
	res, err := loadgen.Replay(client, tr, loadgen.Config{
		Concurrency: concurrency,
		WriteFrac:   p.WriteFrac,
		Interval:    interval,
	})
	if err != nil {
		return benchRecord{}, fmt.Errorf("writes bench: %w", err)
	}
	rec := recordOf(p, res)
	rec.SyncInvalidate = syncInval
	rec.SlowPeer = slow
	mode := "async"
	if syncInval {
		mode = "sync"
	}
	health := "healthy"
	if slow {
		health = "slow-peer"
	}
	log.Printf("%-20s %-5s %-9s %8.0f req/s write_p50=%v write_p99=%v p99=%v skips=%d batched=%d",
		p.Name, mode, health, rec.ReqPerSec,
		res.WriteP50.Round(time.Microsecond), res.WriteP99.Round(time.Microsecond),
		res.P99.Round(time.Microsecond), rec.InvalidateSkips, rec.InvalBatched)
	return rec, nil
}
