// Command ccload replays a web trace against a live middleware cluster and
// reports throughput, latency percentiles, and cluster cache behaviour —
// the real-deployment counterpart of the simulator experiments.
//
// Two modes:
//
//	# drive an already-running cluster (see cmd/ccnode -serve)
//	ccload -cluster 127.0.0.1:7000,127.0.0.1:7001 -files 100 -avg 16384 \
//	       -requests 20000 -concurrency 16
//
//	# self-contained: start an in-process cluster and drive it
//	ccload -selftest -nodes 4 -capacity 512 -requests 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/middleware"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccload: ")
	var (
		cluster     = flag.String("cluster", "", "comma-separated node addresses of a running cluster")
		selftest    = flag.Bool("selftest", false, "start an in-process cluster instead")
		nNodes      = flag.Int("nodes", 4, "selftest cluster size")
		capacity    = flag.Int("capacity", 1024, "selftest per-node cache capacity in blocks")
		hints       = flag.Bool("hints", false, "selftest: hint-based directory")
		files       = flag.Int("files", 100, "synthetic file count (must match the running cluster's)")
		avg         = flag.Int64("avg", 16384, "synthetic average file size (must match the running cluster's)")
		requests    = flag.Int("requests", 10000, "requests to replay")
		concurrency = flag.Int("concurrency", 16, "closed-loop clients")
		warmup      = flag.Float64("warmup", 0.3, "warmup fraction")
		writeFrac   = flag.Float64("writes", 0, "fraction of operations that are block writes")
		zipf        = flag.Float64("zipf", 0.85, "popularity skew of the replayed stream")
		seed        = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	sizes := make(map[block.FileID]int64, *files)
	for f := 0; f < *files; f++ {
		sizes[block.FileID(f)] = *avg/2 + int64(f%7)*(*avg/7)
	}

	var addrs []string
	switch {
	case *selftest:
		nodes := make([]*middleware.Node, *nNodes)
		addrs = make([]string, *nNodes)
		for i := range nodes {
			n, err := middleware.Start(middleware.Config{
				ID: i, Hints: *hints, CapacityBlocks: *capacity,
				Policy: core.PolicyMaster,
				Source: middleware.NewMemSource(block.DefaultGeometry, sizes),
			})
			if err != nil {
				log.Fatal(err)
			}
			defer n.Close()
			nodes[i] = n
			addrs[i] = n.Addr()
		}
		for _, n := range nodes {
			n.SetAddrs(addrs)
		}
		log.Printf("selftest cluster: %v", addrs)
	case *cluster != "":
		for _, a := range strings.Split(*cluster, ",") {
			addrs = append(addrs, strings.TrimSpace(a))
		}
	default:
		log.Fatal("need -cluster or -selftest")
	}

	client, err := middleware.DialCluster(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Build the replay stream over the cluster's file set.
	preset := trace.Preset{
		Name:         "ccload",
		NumFiles:     *files,
		FileSetBytes: totalBytes(sizes),
		NumRequests:  *requests,
		AvgReqKB:     float64(*avg) / 1024, // neutral: no size-popularity bias target
		Alpha:        *zipf,
		SizeSigma:    0.01,
	}
	gen := preset.Generate(*seed, 1.0)
	// Replace generated sizes with the cluster's actual manifest (the
	// generator produced a same-shape stream; only IDs matter here).
	tr := &trace.Trace{Name: "ccload", Requests: gen.Requests}
	for f := 0; f < *files; f++ {
		tr.Files = append(tr.Files, trace.File{ID: block.FileID(f), Size: sizes[block.FileID(f)]})
	}

	res, err := loadgen.Replay(client, tr, loadgen.Config{
		Concurrency: *concurrency,
		WarmupFrac:  *warmup,
		WriteFrac:   *writeFrac,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
}

func totalBytes(sizes map[block.FileID]int64) int64 {
	var sum int64
	for _, s := range sizes {
		sum += s
	}
	return sum
}
