package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/middleware"
)

// resizeRecord is the elastic-membership scenario's outcome: one replay
// during which the cluster grew from Nodes to GrowTo members and drained
// back down, with zero client-visible errors. The interval series carries
// the per-bucket hit rate, rebalance backlog, and membership epoch, so the
// dip around each resize — and its recovery — is visible at its moment.
type resizeRecord struct {
	Nodes     int     `json:"nodes"`
	GrowTo    int     `json:"grow_to"`
	Seed      int64   `json:"seed"`
	Requests  int     `json:"requests"`
	Writes    int     `json:"writes"`
	Errors    int     `json:"errors"`
	ElapsedMS float64 `json:"elapsed_ms"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50US     float64 `json:"p50_us"`
	P95US     float64 `json:"p95_us"`
	P99US     float64 `json:"p99_us"`
	HitRate   float64 `json:"hit_rate"`
	// PreGrowHitRate/FinalHitRate are the per-interval hit-rate medians of
	// the steady state before the grow and of the run's last quarter: the
	// paper's prediction is a transient dip while masters re-home, then
	// recovery to within a few points of the original rate.
	PreGrowHitRate float64 `json:"pre_grow_hit_rate"`
	FinalHitRate   float64 `json:"final_hit_rate"`
	// RebalancedBlocks counts blocks pulled across the cluster by the two
	// re-homing waves; MembershipEpoch is the final epoch (1 initial view
	// + 4 joins + 4 drains + 4 removals = 13).
	RebalancedBlocks  uint64  `json:"rebalanced_blocks"`
	MembershipEpoch   uint64  `json:"membership_epoch"`
	HeartbeatFailures uint64  `json:"heartbeat_failures"`
	HomeFallbacks     uint64  `json:"home_fallbacks"`
	GrowMS            float64 `json:"grow_ms"`
	DrainMS           float64 `json:"drain_ms"`
	faultCounters
	Intervals []loadgen.Interval `json:"intervals,omitempty"`
}

// runResize replays a read-heavy trace against a four-node ring cluster
// and resizes it twice mid-replay with zero client-visible errors: at ~1/4
// of the stream four joiners enter (each Join pulls its slice of every
// file's blocks from the previous homes), and at ~2/3 the four joiners
// drain — survivors pull their slices back, the coordinator removes them,
// and their processes exit. The replay never pauses; the hit-rate series
// in the record shows the paper-predicted dip and recovery around each
// membership wave.
func runResize(out string, requests, concurrency int, seed int64, interval time.Duration) error {
	const (
		baseNodes = 4
		growTo    = 8
		capacity  = 512
		files     = 200
		avgSize   = 16384
	)
	sizes := fileSizes(files, avgSize)
	mut := func(i int, cfg *middleware.Config) {
		cfg.RPCTimeout = time.Second
		cfg.Retries = 2
		// Heartbeats double as view anti-entropy: a member that missed a
		// best-effort view broadcast converges off its next ping exchange.
		cfg.HeartbeatInterval = 50 * time.Millisecond
	}
	_, addrs, shutdown, err := startCluster(baseNodes, capacity, false, sizes, mut)
	if err != nil {
		return fmt.Errorf("resize: %w", err)
	}
	defer shutdown()
	client, err := middleware.DialClusterConfig(addrs, middleware.ClientConfig{
		RPCTimeout: 2 * time.Second,
		Retries:    3,
	})
	if err != nil {
		return fmt.Errorf("resize: %w", err)
	}
	defer client.Close()

	tr := buildTrace(files, sizes, requests, 0.85, avgSize, seed)
	growAt := len(tr.Requests) / 4
	drainAt := 2 * len(tr.Requests) / 3

	var joiners []*middleware.Node
	defer func() {
		for _, n := range joiners {
			n.Close()
		}
	}()
	var growDur, drainDur time.Duration
	var hookErr error

	grow := func() {
		start := time.Now()
		log.Printf("resize: growing %d→%d at request %d", baseNodes, growTo, growAt)
		for id := baseNodes; id < growTo; id++ {
			n, err := middleware.Start(middleware.Config{
				ID: id, CapacityBlocks: capacity, Policy: core.PolicyMaster,
				Source:            middleware.NewMemSource(block.DefaultGeometry, sizes),
				RPCTimeout:        time.Second,
				Retries:           2,
				HeartbeatInterval: 50 * time.Millisecond,
			})
			if err != nil {
				hookErr = fmt.Errorf("start joiner %d: %w", id, err)
				return
			}
			joiners = append(joiners, n)
			if err := n.Join(addrs[0]); err != nil {
				hookErr = fmt.Errorf("join node %d: %w", id, err)
				return
			}
		}
		if err := client.RefreshMembership(); err != nil {
			hookErr = fmt.Errorf("refresh after grow: %w", err)
			return
		}
		growDur = time.Since(start)
		log.Printf("resize: grew to %d members in %v (epoch %d)", growTo, growDur.Round(time.Millisecond), client.MembershipEpoch())
	}

	drain := func() {
		start := time.Now()
		log.Printf("resize: draining back to %d at request %d", baseNodes, drainAt)
		for id := baseNodes; id < growTo; id++ {
			if err := client.DrainNode(id); err != nil {
				hookErr = fmt.Errorf("drain node %d: %w", id, err)
				return
			}
		}
		// Survivors pull the drained slices back; the drained members keep
		// serving until the backlog is gone, so no request ever errors.
		deadline := time.Now().Add(60 * time.Second)
		for {
			st, err := client.ClusterStats()
			if err == nil && st.RebalancePending == 0 {
				break
			}
			if time.Now().After(deadline) {
				hookErr = fmt.Errorf("drain rebalance never settled")
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		for i, n := range joiners {
			id := baseNodes + i
			if err := client.RemoveNode(id); err != nil {
				hookErr = fmt.Errorf("remove node %d: %w", id, err)
				return
			}
			n.Close()
		}
		joiners = nil
		if err := client.RefreshMembership(); err != nil {
			hookErr = fmt.Errorf("refresh after drain: %w", err)
			return
		}
		drainDur = time.Since(start)
		log.Printf("resize: drained to %d members in %v (epoch %d)", baseNodes, drainDur.Round(time.Millisecond), client.MembershipEpoch())
	}

	res, err := loadgen.Replay(client, tr, loadgen.Config{
		Concurrency: concurrency,
		WarmupFrac:  0.1,
		WriteFrac:   0.05,
		Interval:    interval,
		Breakpoints: []loadgen.Breakpoint{{Index: growAt, Fn: grow}, {Index: drainAt, Fn: drain}},
	})
	if err != nil {
		return fmt.Errorf("resize: client-visible failure: %w", err)
	}
	if hookErr != nil {
		return fmt.Errorf("resize: %w", hookErr)
	}
	fmt.Println(res)

	st := res.Cluster
	if res.Errors != 0 {
		return fmt.Errorf("resize: %d client-visible errors", res.Errors)
	}
	if st.RebalancedBlocks == 0 {
		return fmt.Errorf("resize: no blocks rebalanced across two membership waves")
	}
	if st.MembershipEpoch < 13 {
		return fmt.Errorf("resize: final epoch %d, want ≥13 (4 joins + 4 drains + 4 removals)", st.MembershipEpoch)
	}

	pre, final := hitRateRecovery(res.Intervals)
	if pre >= 0 && final >= 0 {
		log.Printf("resize: hit rate pre-grow %.1f%% → final %.1f%% (recovery gap %.1f pts)",
			pre*100, final*100, (pre-final)*100)
		if final < pre-0.05 {
			return fmt.Errorf("resize: hit rate never recovered: pre-grow %.1f%%, final %.1f%% (>5pt gap)", pre*100, final*100)
		}
	} else {
		log.Printf("resize: run too short for a hit-rate recovery verdict (need ≥2 valid buckets per side)")
	}

	doc := loadBenchDoc(out)
	doc.Resize = &resizeRecord{
		Nodes:             baseNodes,
		GrowTo:            growTo,
		Seed:              seed,
		Requests:          res.Requests,
		Writes:            res.Writes,
		Errors:            res.Errors,
		ElapsedMS:         float64(res.Elapsed) / float64(time.Millisecond),
		ReqPerSec:         res.Throughput,
		P50US:             float64(res.P50) / float64(time.Microsecond),
		P95US:             float64(res.P95) / float64(time.Microsecond),
		P99US:             float64(res.P99) / float64(time.Microsecond),
		HitRate:           st.HitRate(),
		PreGrowHitRate:    pre,
		FinalHitRate:      final,
		RebalancedBlocks:  st.RebalancedBlocks,
		MembershipEpoch:   st.MembershipEpoch,
		HeartbeatFailures: st.HeartbeatFailures,
		HomeFallbacks:     st.HomeFallbacks,
		GrowMS:            float64(growDur) / float64(time.Millisecond),
		DrainMS:           float64(drainDur) / float64(time.Millisecond),
		faultCounters:     faultCountersOf(res),
		Intervals:         res.Intervals,
	}
	return writeBenchDoc(out, doc)
}

// hitRateRecovery extracts the steady-state hit rate before the grow (the
// buckets still at the initial epoch) and the median over the run's last
// quarter. Either is -1 when fewer than two valid buckets support it.
func hitRateRecovery(ivs []loadgen.Interval) (pre, final float64) {
	pre, final = -1, -1
	if len(ivs) == 0 {
		return
	}
	firstEpoch := ivs[0].MembershipEpoch
	var preRates, finalRates []float64
	for i, iv := range ivs {
		if iv.HitRate < 0 {
			continue
		}
		if iv.MembershipEpoch == firstEpoch {
			preRates = append(preRates, iv.HitRate)
		}
		if i >= 3*len(ivs)/4 {
			finalRates = append(finalRates, iv.HitRate)
		}
	}
	if len(preRates) >= 2 {
		pre = median(preRates)
	}
	if len(finalRates) >= 2 {
		final = median(finalRates)
	}
	return
}

func median(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}
