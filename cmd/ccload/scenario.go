package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/block"
	"repro/internal/loadgen"
	"repro/internal/middleware"
	"repro/internal/trace"
)

// The scenario matrix pins the protocol's counter signatures: each named
// scenario builds a cluster sized to force exactly one cache regime, replays
// it, and checks the counters that regime must (and must not) produce. They
// run in CI as a smoke matrix — a change that silently shifts traffic between
// the local/remote/disk paths, stops invalidating, or never engages the
// adaptive layer fails its scenario even while every unit test still passes.

// scenarioNames fixes the run order of -scenario all.
var scenarioNames = []string{
	"full_hit", "partial_hit", "cold_miss", "write_invalidate", "flash_crowd", "node_drain",
}

var scenarios = map[string]func(requests, concurrency int, seed int64) error{
	"full_hit":         scenarioFullHit,
	"partial_hit":      scenarioPartialHit,
	"cold_miss":        scenarioColdMiss,
	"write_invalidate": scenarioWriteInvalidate,
	"flash_crowd":      scenarioFlashCrowd,
	"node_drain":       scenarioNodeDrain,
}

// runScenarios runs one named scenario, or all of them in order.
func runScenarios(name string, requests, concurrency int, seed int64) error {
	names := []string{name}
	if name == "all" {
		names = scenarioNames
	}
	for _, nm := range names {
		fn, ok := scenarios[nm]
		if !ok {
			return fmt.Errorf("unknown scenario %q (have %v)", nm, scenarioNames)
		}
		if err := fn(requests, concurrency, seed); err != nil {
			return fmt.Errorf("scenario %s: %w", nm, err)
		}
		log.Printf("scenario %-17s PASS", nm)
	}
	return nil
}

// scenarioCluster is the common 4-node in-process setup of the matrix. The
// scenarios pin counter signatures written against the paper's static
// int(f) % clusterSize placement (node_drain excludes the drained node's
// homed files by modulo), so the matrix runs with StaticHome — the
// elastic-membership counterpart is ccload -resize.
func scenarioCluster(capacity, files int, mut func(i int, cfg *middleware.Config)) (map[block.FileID]int64, []*middleware.Node, *middleware.Client, func(), error) {
	sizes := fileSizes(files, 16384)
	nodes, addrs, shutdown, err := startCluster(4, capacity, false, sizes, func(i int, cfg *middleware.Config) {
		cfg.StaticHome = true
		if mut != nil {
			mut(i, cfg)
		}
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	client, err := middleware.DialClusterConfig(addrs, middleware.ClientConfig{
		RPCTimeout: 2 * time.Second, Retries: 3,
	})
	if err != nil {
		shutdown()
		return nil, nil, nil, nil, err
	}
	return sizes, nodes, client, func() { client.Close(); shutdown() }, nil
}

// scenarioFullHit: aggregate capacity holds the whole working set. After a
// priming replay, a second identical replay must be answered entirely from
// cluster memory — its disk-read delta must be zero.
func scenarioFullHit(requests, concurrency int, seed int64) error {
	const files = 40
	sizes, _, client, done, err := scenarioCluster(4096, files, nil)
	if err != nil {
		return err
	}
	defer done()
	tr := buildTrace(files, sizes, requests, 0.85, 16384, seed)
	if _, err := loadgen.Replay(client, tr, loadgen.Config{Concurrency: concurrency, WarmupFrac: 0.01}); err != nil {
		return err
	}
	warm, err := client.ClusterStats()
	if err != nil {
		return err
	}
	res, err := loadgen.Replay(client, tr, loadgen.Config{Concurrency: concurrency, WarmupFrac: 0.01})
	if err != nil {
		return err
	}
	if res.Errors != 0 {
		return fmt.Errorf("%d errors", res.Errors)
	}
	st := res.Cluster
	if d := st.DiskReads - warm.DiskReads; d != 0 {
		return fmt.Errorf("signature broken: %d disk reads on a fully warm cluster", d)
	}
	if hits := st.LocalHits + st.RemoteHits - warm.LocalHits - warm.RemoteHits; hits == 0 {
		return fmt.Errorf("signature broken: no memory hits measured")
	}
	return nil
}

// scenarioPartialHit: aggregate capacity holds roughly half the working set,
// so a replay must exercise all three resolution paths at once — local hits,
// remote (peer) hits, and disk reads.
func scenarioPartialHit(requests, concurrency int, seed int64) error {
	const files = 200
	sizes, _, client, done, err := scenarioCluster(64, files, nil)
	if err != nil {
		return err
	}
	defer done()
	tr := buildTrace(files, sizes, requests, 0.85, 16384, seed)
	res, err := loadgen.Replay(client, tr, loadgen.Config{Concurrency: concurrency})
	if err != nil {
		return err
	}
	if res.Errors != 0 {
		return fmt.Errorf("%d errors", res.Errors)
	}
	st := res.Cluster
	if st.LocalHits == 0 || st.RemoteHits == 0 || st.DiskReads == 0 {
		return fmt.Errorf("signature broken: local=%d remote=%d disk=%d (want all three paths active)",
			st.LocalHits, st.RemoteHits, st.DiskReads)
	}
	if sum := st.LocalHits + st.RemoteHits + st.DiskReads; sum > st.Accesses {
		return fmt.Errorf("counter identity broken: %d resolutions for %d accesses", sum, st.Accesses)
	}
	return nil
}

// scenarioColdMiss: every file is requested exactly once against an empty
// cluster — every block access must be a disk read, and none may be served
// from local or peer memory.
func scenarioColdMiss(requests, concurrency int, seed int64) error {
	files := requests
	if files > 300 {
		files = 300
	}
	sizes, _, client, done, err := scenarioCluster(4096, files, nil)
	if err != nil {
		return err
	}
	defer done()
	tr := &trace.Trace{Name: "cold"}
	for f := 0; f < files; f++ {
		tr.Files = append(tr.Files, trace.File{ID: block.FileID(f), Size: sizes[block.FileID(f)]})
		tr.Requests = append(tr.Requests, block.FileID(f))
	}
	res, err := loadgen.Replay(client, tr, loadgen.Config{Concurrency: concurrency, WarmupFrac: 0.01})
	if err != nil {
		return err
	}
	if res.Errors != 0 {
		return fmt.Errorf("%d errors", res.Errors)
	}
	st := res.Cluster
	if st.LocalHits != 0 || st.RemoteHits != 0 {
		return fmt.Errorf("signature broken: %d local + %d remote hits on an all-cold stream",
			st.LocalHits, st.RemoteHits)
	}
	if st.DiskReads != st.Accesses || st.DiskReads == 0 {
		return fmt.Errorf("signature broken: %d disk reads for %d accesses (want equal, nonzero)",
			st.DiskReads, st.Accesses)
	}
	return nil
}

// scenarioWriteInvalidate: a write-heavy replay over the invalidation bus.
// Writes must flow, every write must invalidate cluster-wide (asynchronously:
// the backlog must drain to zero and the totals must reach one invalidation
// per node per write), and deliveries must actually batch.
func scenarioWriteInvalidate(requests, concurrency int, seed int64) error {
	const files = 100
	sizes, _, client, done, err := scenarioCluster(512, files, nil)
	if err != nil {
		return err
	}
	defer done()
	tr := buildTrace(files, sizes, requests, 0.85, 16384, seed)
	res, err := loadgen.Replay(client, tr, loadgen.Config{Concurrency: concurrency, WriteFrac: 0.3})
	if err != nil {
		return err
	}
	if res.Errors != 0 {
		return fmt.Errorf("%d errors", res.Errors)
	}
	if res.Writes == 0 {
		return fmt.Errorf("no writes measured at WriteFrac 0.3")
	}
	deadline := time.Now().Add(15 * time.Second)
	var st middleware.Stats
	for {
		if st, err = client.ClusterStats(); err != nil {
			return err
		}
		if st.InvalBacklog == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("invalidation backlog %d never drained", st.InvalBacklog)
		}
		time.Sleep(time.Millisecond)
	}
	// One write = one sequenced record applied at every node (the writer
	// locally, the peers via the bus). Warmup writes count too, so compare
	// against the cluster-wide write total.
	if st.Invalidations < st.Writes {
		return fmt.Errorf("signature broken: %d invalidations for %d writes", st.Invalidations, st.Writes)
	}
	if st.InvalBatched == 0 {
		return fmt.Errorf("signature broken: bus delivered no batched invalidations")
	}
	if st.InvalidateSkips != 0 {
		return fmt.Errorf("signature broken: %d invalidate skips on a healthy cluster", st.InvalidateSkips)
	}
	return nil
}

// scenarioFlashCrowd: a non-stationary trace with a scheduled flash crowd
// against the adaptive cluster — hot blocks must be pushed as replicas and
// those replicas must serve hits.
func scenarioFlashCrowd(requests, concurrency int, seed int64) error {
	const files = 300
	mut := func(i int, cfg *middleware.Config) {
		cfg.ReplicateThreshold = flashReplicateThreshold
		cfg.ReplicaFanout = flashReplicaFanout
		cfg.HotnessEpoch = flashHotnessEpoch
		cfg.AdmissionFilter = true
	}
	sizes, _, client, done, err := scenarioCluster(256, files, mut)
	if err != nil {
		return err
	}
	defer done()
	spec := trace.FlashSpec{At: 0.35, Dur: 0.5, Files: 24, Boost: 0.7}
	tr := buildFlashTrace(files, sizes, requests, 0.9, 16384, seed, spec)
	res, err := loadgen.Replay(client, tr, loadgen.Config{Concurrency: concurrency, WriteFrac: 0.1})
	if err != nil {
		return err
	}
	if res.Errors != 0 {
		return fmt.Errorf("%d errors", res.Errors)
	}
	st := res.Cluster
	if st.ReplicasPushed == 0 {
		return fmt.Errorf("signature broken: flash crowd pushed no replicas")
	}
	if st.ReplicaHits == 0 {
		return fmt.Errorf("signature broken: %d pushed replicas served no hits", st.ReplicasPushed)
	}
	return nil
}

// scenarioNodeDrain: after a write burst, one node is drained — its
// invalidation bus must flush completely before it leaves, and the survivors
// must absorb its traffic (client failovers, zero errors) while serving only
// post-write bytes.
func scenarioNodeDrain(requests, concurrency int, seed int64) error {
	const files = 100
	const drainNode = 3
	sizes, nodes, client, done, err := scenarioCluster(512, files, nil)
	if err != nil {
		return err
	}
	defer done()
	// Phase 1: mixed replay on the full cluster.
	tr := buildTrace(files, sizes, requests, 0.85, 16384, seed)
	if _, err := loadgen.Replay(client, tr, loadgen.Config{Concurrency: concurrency, WriteFrac: 0.2}); err != nil {
		return err
	}
	// One tracked write whose freshness the survivors must preserve across
	// the drain (file 0 homes at node 0, not the drained node).
	patch := bytes.Repeat([]byte{0xD7}, int(block.DefaultGeometry.Size)) // file 0 is one full block
	if err := client.Write(0, 0, patch); err != nil {
		return err
	}
	// Drain: every node flushes its outgoing invalidations, then the node
	// leaves. An unflushed bus here would strand peers stale forever — the
	// drained node's records die with it.
	for i, n := range nodes {
		if !n.FlushInval(10 * time.Second) {
			return fmt.Errorf("node %d bus never drained", i)
		}
	}
	nodes[drainNode].Close()
	// Phase 2: read-only replay avoiding the drained node's homed files.
	kept := tr.Requests[:0]
	for _, f := range tr.Requests {
		if int(f)%4 != drainNode {
			kept = append(kept, f)
		}
	}
	tr.Requests = kept
	res, err := loadgen.Replay(client, tr, loadgen.Config{Concurrency: concurrency})
	if err != nil {
		return err
	}
	if res.Errors != 0 {
		return fmt.Errorf("%d errors after drain", res.Errors)
	}
	if res.Fault.Failovers+res.Fault.BreakerSkips == 0 {
		return fmt.Errorf("signature broken: no failovers or breaker skips — the drained node was never routed around")
	}
	got, err := client.Read(0)
	if err != nil {
		return err
	}
	if len(got) < len(patch) || !bytes.Equal(got[:len(patch)], patch) {
		return fmt.Errorf("stale bytes served after a flushed drain")
	}
	return nil
}
