// Command ccsim runs one simulated configuration — a server variant on a
// cluster against a trace — and prints the measured point. It is the
// exploratory front-end; cmd/ccbench regenerates the paper's figures.
//
// Usage:
//
//	ccsim -trace rutgers -variant cc-master -nodes 8 -mem 64
//	ccsim -params        # dump the Table 1 constants
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ccsim: ")
	var (
		traceName = flag.String("trace", "rutgers", "trace preset (calgary, clarknet, nasa, rutgers)")
		variant   = flag.String("variant", "cc-master", "server variant (l2s, cc-basic, cc-sched, cc-master)")
		nodes     = flag.Int("nodes", 8, "cluster size")
		memMB     = flag.Int("mem", 64, "memory per node in MB")
		requests  = flag.Int("requests", 150000, "approximate request count (file set is never scaled)")
		scale     = flag.Float64("scale", 0, "explicit request scale in (0,1] (overrides -requests)")
		clients   = flag.Int("clients", 0, "closed-loop clients (0: 16 per node)")
		warmup    = flag.Float64("warmup", 0, "warmup fraction (0: default 0.4)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		hints     = flag.Float64("hints", 0, "hint-directory accuracy in (0,1); 0 = perfect directory")
		params    = flag.Bool("params", false, "print the Table 1 modeling constants and exit")
	)
	flag.Parse()

	if *params {
		printParams()
		return
	}

	preset, ok := trace.PresetByName(*traceName)
	if !ok {
		log.Fatalf("unknown trace %q", *traceName)
	}
	v := experiments.Variant(*variant)
	if _, isCC := v.CCPolicy(); !isCC && v != experiments.VariantL2S {
		log.Fatalf("unknown variant %q", *variant)
	}

	h := experiments.NewHarness(experiments.Options{
		Seed:           *seed,
		Scale:          *scale,
		TargetRequests: *requests,
		Clients:        *clients,
		WarmupFrac:     *warmup,
		HintAccuracy:   *hints,
	})
	pt := h.Point(preset, v, *nodes, *memMB)
	fmt.Println(pt)
	fmt.Printf("  measured requests: %d   P95 response: %.2fms   max disk util: %.2f\n",
		pt.Requests, pt.P95RespMs, pt.MaxDisk)
}

func printParams() {
	p := hw.DefaultParams()
	fmt.Println("Table 1: simulation parameters (reconstruction; see DESIGN.md)")
	row := func(name string, v sim.Duration) { fmt.Printf("  %-34s %v\n", name, v) }
	row("Parsing time", p.ParseTime)
	fmt.Printf("  %-34s %v + %v/KB\n", "Serving time", p.ServeBase, p.ServePerKB)
	fmt.Printf("  %-34s %v + %v/block\n", "Process a file request", p.FileReqBase, p.FileReqPerBlock)
	row("Serve peer block request", p.ServePeerBlock)
	row("Cache a new block", p.CacheNewBlock)
	row("Process an evicted master block", p.ProcessEvictedMaster)
	row("Disk seek (avg)", p.DiskSeek)
	row("Disk rotational latency (avg)", p.DiskRotation)
	row("Disk metadata seek per extent", p.DiskMetaSeek)
	fmt.Printf("  %-34s %.0f KB/ms\n", "Disk transfer rate", p.DiskKBPerMS)
	fmt.Printf("  %-34s %v + %.0f KB/ms\n", "Bus transfer", p.BusBase, p.BusKBPerMS)
	row("Network latency (one way)", p.NetLatency)
	fmt.Printf("  %-34s %.3f KB/ms (1 Gb/s)\n", "Network bandwidth", p.NetKBPerMS)
	row("Router forwarding", p.RouterFwd)
	row("TCP hand-off (L2S)", p.HandoffTime)
}
