// Command cctrace generates and characterizes the web workloads: it prints
// the Table 2 row for each (synthetic) trace, the Figure 1 CDF curves, and
// can characterize a real access log in Common Log Format.
//
// Usage:
//
//	cctrace -table2                       # print Table 2
//	cctrace -fig1 [-trace rutgers]        # print Figure 1 CDF points
//	cctrace -parse access.log             # characterize a CLF log
//	cctrace -coverage 0.99 -trace rutgers # bytes needed to cover 99% of requests
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cctrace: ")
	var (
		table2    = flag.Bool("table2", false, "print the Table 2 characterization of all four traces")
		fig1      = flag.Bool("fig1", false, "print the Figure 1 CDF for -trace")
		traceName = flag.String("trace", "rutgers", "trace preset (calgary, clarknet, nasa, rutgers)")
		scale     = flag.Float64("scale", 1.0, "request-stream scale in (0,1]")
		seed      = flag.Int64("seed", 1, "generator seed")
		points    = flag.Int("points", 25, "CDF sample points for -fig1")
		parse     = flag.String("parse", "", "characterize a Common Log Format file instead")
		coverage  = flag.Float64("coverage", 0, "report MB of hottest files covering this request fraction")
		save      = flag.String("save", "", "write the generated trace to this file (binary format)")
		load      = flag.String("load", "", "read a binary trace from this file instead of generating")
		stack     = flag.Bool("stack", false, "print the ideal-LRU hit-rate curve (stack-distance analysis)")
	)
	flag.Parse()

	if *parse != "" {
		f, err := os.Open(*parse)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err := trace.ParseCLF(*parse, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(trace.Characterize(tr))
		return
	}

	if *table2 {
		fmt.Println("Table 2: characteristics of the WWW traces (synthetic reconstruction)")
		for _, p := range trace.Presets {
			tr := p.Generate(*seed, *scale)
			fmt.Println(trace.Characterize(tr))
		}
		return
	}

	var tr *trace.Trace
	name := *traceName
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err = trace.ReadBinary(f)
		if err != nil {
			log.Fatal(err)
		}
		name = tr.Name
	} else {
		preset, ok := trace.PresetByName(name)
		if !ok {
			log.Fatalf("unknown trace %q", name)
		}
		tr = preset.Generate(*seed, *scale)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteBinary(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d files, %d requests)\n", *save, len(tr.Files), len(tr.Requests))
		return
	}

	if *coverage > 0 {
		mb := float64(trace.BytesForCoverage(tr, *coverage)) / (1 << 20)
		fmt.Printf("%s: %.1f%% of requests are covered by %.0f MB of the hottest files\n",
			name, *coverage*100, mb)
		return
	}

	if *stack {
		sa := trace.AnalyzeStack(tr)
		fmt.Printf("Ideal single-LRU hit rate for %s (theoretical maximum of §5)\n", name)
		fmt.Printf("%-12s %-10s\n", "cache MB", "hit rate %")
		for _, mb := range []int64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096} {
			fmt.Printf("%-12d %-10.1f\n", mb, sa.HitRate(mb<<20)*100)
		}
		fmt.Printf("ceiling (infinite cache): %.1f%% (%.1f%% compulsory misses)\n",
			sa.MaxHitRate()*100, sa.ColdRate()*100)
		return
	}

	if *fig1 {
		fmt.Printf("Figure 1 (%s): files by request frequency -> cumulative requests and size\n", name)
		fmt.Printf("%-10s %-12s %-10s\n", "file%", "requests%", "cum MB")
		for _, pt := range trace.CDF(tr, *points) {
			fmt.Printf("%-10.1f %-12.1f %-10.1f\n", pt.FileFrac*100, pt.CumReqFrac*100, pt.CumMB)
		}
		return
	}

	flag.Usage()
	os.Exit(2)
}
