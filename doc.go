// Package repro is a from-scratch Go reproduction of "Cooperative Caching
// Middleware for Cluster-Based Servers" (Cuenca-Acuña & Nguyen, HPDC 2001):
// a discrete-event cluster simulator regenerating every table and figure of
// the paper's evaluation, the cooperative caching middleware itself (both
// simulated and as a live TCP implementation), the L2S and LARD
// locality-conscious baselines, and the paper's future-work extensions
// (hint-based directories, writes, whole-file adaptation).
//
// Start with README.md for the tour, DESIGN.md for the system inventory and
// Table 1/2 reconstruction, and EXPERIMENTS.md for the paper-vs-measured
// record. The root package holds the per-figure benchmark harness
// (bench_test.go) and the end-to-end integration test.
package repro
