// End-to-end integration: the full pipeline from trace generation through
// binary persistence, every simulated server variant, and a live cluster
// replay of the same file set — the wiring a downstream user exercises.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/l2s"
	"repro/internal/lard"
	"repro/internal/loadgen"
	"repro/internal/middleware"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// 1. Generate a workload, persist it, reload it: byte-identical.
	preset := trace.Calgary
	tr := preset.Generate(7, 0.01)
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Requests) != len(tr.Requests) {
		t.Fatal("persistence changed the trace")
	}

	// 2. Drive every simulated server variant with the reloaded trace.
	params := hw.DefaultParams()
	throughputs := map[string]float64{}
	for _, policy := range core.Policies {
		eng := sim.NewEngine(1)
		s := core.New(eng, &params, tr2, core.Config{Nodes: 4, MemoryPerNode: 8 << 20, Policy: policy})
		res := workload.Run(eng, s, tr2, workload.Config{})
		throughputs[policy.String()] = res.Throughput
	}
	{
		eng := sim.NewEngine(1)
		s := l2s.New(eng, &params, tr2, l2s.Config{Nodes: 4, MemoryPerNode: 8 << 20})
		throughputs["l2s"] = workload.Run(eng, s, tr2, workload.Config{}).Throughput
	}
	{
		eng := sim.NewEngine(1)
		s := lard.New(eng, &params, tr2, lard.Config{Nodes: 4, MemoryPerNode: 8 << 20, Replication: true})
		throughputs["lard-r"] = workload.Run(eng, s, tr2, workload.Config{}).Throughput
	}
	for name, tput := range throughputs {
		if tput <= 0 {
			t.Fatalf("%s produced no throughput", name)
		}
	}
	if throughputs["cc-master"] <= throughputs["cc-basic"] {
		t.Fatalf("ordering violated: master %.0f <= basic %.0f",
			throughputs["cc-master"], throughputs["cc-basic"])
	}

	// 3. The experiment harness reproduces a figure over the same preset.
	h := experiments.NewHarness(experiments.Options{TargetRequests: 4000, MemoriesMB: []int{8}})
	fig := h.Figure2(preset, 4)
	if len(fig.Series) != 4 {
		t.Fatalf("figure series = %d", len(fig.Series))
	}

	// 4. A live cluster serves a slice of the same file set, driven by the
	// load generator, with content integrity verified by the middleware's
	// synthetic source.
	geom := block.DefaultGeometry
	sizes := map[block.FileID]int64{}
	liveFiles := 24
	for f := 0; f < liveFiles; f++ {
		sizes[block.FileID(f)] = tr.Files[f].Size
	}
	nodes := make([]*middleware.Node, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		n, err := middleware.Start(middleware.Config{
			ID: i, CapacityBlocks: 512, Policy: core.PolicyMaster,
			Geometry: geom, Source: middleware.NewMemSource(geom, sizes),
			Readahead: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := middleware.DialCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	replay := &trace.Trace{Name: "live"}
	for f := 0; f < liveFiles; f++ {
		replay.Files = append(replay.Files, trace.File{ID: block.FileID(f), Size: sizes[block.FileID(f)]})
	}
	for i, r := range tr.Requests {
		if i >= 400 {
			break
		}
		replay.Requests = append(replay.Requests, r%block.FileID(liveFiles))
	}
	res, err := loadgen.Replay(client, replay, loadgen.Config{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Requests == 0 {
		t.Fatalf("live replay: %+v", res)
	}
	if res.Cluster.HitRate() <= 0 {
		t.Fatal("live cluster had no cache hits")
	}
}
