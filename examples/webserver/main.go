// Webserver: the paper's motivating application — a cluster web server
// built on the generic cooperative caching middleware instead of
// content-aware request distribution. An HTTP front end plays the role of
// round-robin DNS: each request enters the cluster at the next node, and
// the middleware turns the nodes' memories into one big cache.
//
// Run with:
//
//	go run ./examples/webserver [-nodes 4] [-listen :8080]
//
// then fetch documents:
//
//	curl http://localhost:8080/doc/17
//	curl http://localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/httpfront"
	"repro/internal/middleware"
)

func main() {
	log.SetFlags(0)
	var (
		nNodes = flag.Int("nodes", 4, "middleware cluster size")
		listen = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		docs   = flag.Int("docs", 64, "number of documents to publish")
	)
	flag.Parse()

	// Publish documents on disk: this example writes real files and serves
	// them through a DirSource, the deployment-shaped backing store.
	dir, err := os.MkdirTemp("", "ccweb")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	geom := block.DefaultGeometry
	names := make(map[block.FileID]string, *docs)
	for d := 0; d < *docs; d++ {
		name := fmt.Sprintf("doc%03d.html", d)
		body := fmt.Sprintf("<html><body><h1>Document %d</h1><p>%s</p></body></html>",
			d, strings.Repeat(fmt.Sprintf("cooperative caching paragraph %d. ", d), 200))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		names[block.FileID(d)] = name
	}

	// Start the middleware cluster. All nodes share the document directory
	// (the L2S-style "every file on every disk" layout is the simplest
	// deployment on one machine; homes still partition responsibility).
	nodes := make([]*middleware.Node, *nNodes)
	addrs := make([]string, *nNodes)
	for i := range nodes {
		n, err := middleware.Start(middleware.Config{
			ID:             i,
			CapacityBlocks: 256,
			Policy:         core.PolicyMaster,
			Geometry:       geom,
			Source:         middleware.NewDirSource(geom, dir, names),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	for _, n := range nodes {
		n.SetAddrs(addrs)
	}
	client, err := middleware.DialCluster(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	log.Printf("middleware cluster: %v", addrs)

	// The HTTP layer: a gateway resolving /doc/<id> paths, with ETag-based
	// conditional GETs, Range support, and locality hand-off (requests enter
	// the cluster at the document's home node), plus statistics endpoints.
	table := httpfront.NewPathTable(nil)
	for d := 0; d < *docs; d++ {
		table.Add(fmt.Sprintf("/doc/%d", d), block.FileID(d))
	}
	gw := httpfront.New(client, table)
	mux := http.NewServeMux()
	mux.Handle("/doc/", gw)
	mux.Handle("/httpstats", gw.StatsJSONHandler())
	mux.Handle("/stats", httpfront.StatsHandler(client))

	// NewServer speaks HTTP/1.1 keep-alive and cleartext HTTP/2 (h2c), the
	// production front-door shape; responses stream through a FileReader in
	// bounded chunks, never materializing a document in gateway memory.
	srv := httpfront.NewServer(mux)
	srv.Addr = *listen
	log.Printf("serving %d documents on http://%s/doc/<id>", *docs, *listen)
	log.Fatal(srv.ListenAndServe())
}
