// Quickstart: spin up a three-node cooperative caching cluster in one
// process, read files through it from every node, and watch the cluster
// behave as one shared cache — remote memory hits instead of disk reads,
// exactly the trade the paper advocates for Gb/s LANs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/middleware"
)

func main() {
	log.SetFlags(0)

	// A small synthetic file set: 24 files of 32 KB. Every node knows the
	// manifest; each file's blocks live on its home node's "disk".
	geom := block.DefaultGeometry
	sizes := make(map[block.FileID]int64)
	for f := 0; f < 24; f++ {
		sizes[block.FileID(f)] = 32 * 1024
	}

	// Start three nodes with 64-block (512 KB) caches each and the paper's
	// master-preserving replacement policy.
	const n = 3
	nodes := make([]*middleware.Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := middleware.Start(middleware.Config{
			ID:             i,
			CapacityBlocks: 64,
			Policy:         core.PolicyMaster,
			Geometry:       geom,
			Source:         middleware.NewMemSource(geom, sizes),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	for _, node := range nodes {
		node.SetAddrs(addrs)
	}
	fmt.Printf("cluster up: %v\n\n", addrs)

	client, err := middleware.DialCluster(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Round 1: cold reads. Every block comes off a home disk once.
	for f := 0; f < 24; f++ {
		if _, err := client.Read(block.FileID(f)); err != nil {
			log.Fatal(err)
		}
	}
	report(client, "after cold reads")

	// Round 2: read every file again, entering at a *different* node than
	// the one that cached it. The misses are now served from peer memory,
	// not disk.
	for f := 0; f < 24; f++ {
		if _, err := client.ReadVia((f+1)%n, block.FileID(f)); err != nil {
			log.Fatal(err)
		}
	}
	report(client, "after re-reads via other nodes")
}

func report(client *middleware.Client, when string) {
	s, err := client.ClusterStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", when)
	fmt.Printf("  block accesses: %d\n", s.Accesses)
	fmt.Printf("  local hits:     %d\n", s.LocalHits)
	fmt.Printf("  remote hits:    %d   <- peer memory instead of disk\n", s.RemoteHits)
	fmt.Printf("  disk reads:     %d\n", s.DiskReads)
	fmt.Printf("  cached blocks:  %d (%d masters)\n\n", s.StoreLen, s.StoreMasters)
}
