// Fileserver: a read/write block service on the middleware, exercising the
// paper's §6 future-work extensions — the write-invalidate protocol and the
// hint-based directory. A writer updates blocks while readers stream the
// file through different nodes; invalidation keeps every reader coherent.
//
// Run with:
//
//	go run ./examples/fileserver
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/middleware"
)

func main() {
	log.SetFlags(0)

	geom := block.DefaultGeometry
	const fileID = block.FileID(0)
	fileSize := int64(4 * geom.Size) // 4 blocks
	sizes := map[block.FileID]int64{fileID: fileSize}

	// Hint-based directory mode: no central directory node, location
	// knowledge spreads through the protocol traffic itself.
	const n = 3
	nodes := make([]*middleware.Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := middleware.Start(middleware.Config{
			ID:             i,
			Hints:          true,
			CapacityBlocks: 32,
			Policy:         core.PolicyMaster,
			Geometry:       geom,
			Source:         middleware.NewMemSource(geom, sizes),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	for _, node := range nodes {
		node.SetAddrs(addrs)
	}
	client, err := middleware.DialCluster(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Printf("cluster up (hint-based directory): %v\n\n", addrs)

	// Warm every node's cache with the file.
	for i := 0; i < n; i++ {
		if _, err := client.ReadVia(i, fileID); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("file cached on every node")

	// Overwrite block 2 through node 0: the middleware invalidates every
	// cached copy, writes through to the home disk, and keeps the writer
	// as the new master holder.
	newBlock := bytes.Repeat([]byte("W"), geom.Size)
	if err := client.Write(fileID, 2, newBlock); err != nil {
		log.Fatal(err)
	}
	fmt.Println("block 2 overwritten via write-invalidate")

	// Every entry node must now observe the new content.
	for i := 0; i < n; i++ {
		data, err := client.ReadVia(i, fileID)
		if err != nil {
			log.Fatal(err)
		}
		got := data[2*geom.Size : 3*geom.Size]
		if !bytes.Equal(got, newBlock) {
			log.Fatalf("node %d served stale content", i)
		}
		fmt.Printf("read via node %d: block 2 is fresh (%d bytes total)\n", i, len(data))
	}

	s, err := client.ClusterStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninvalidations=%d writes=%d hint accuracy=%.1f%%\n",
		s.Invalidations, s.Writes, s.HintAccuracy*100)
}
