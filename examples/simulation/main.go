// Simulation: a miniature of the paper's headline experiment, run through
// the public experiment harness — Figure 2's Calgary panel at reduced
// request scale, printing throughput for L2S and the three cooperative
// caching variants and checking the §5 ordering.
//
// Run with:
//
//	go run ./examples/simulation
//
// (cmd/ccbench regenerates all figures at full scale.)
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	h := experiments.NewHarness(experiments.Options{
		Seed:           1,
		TargetRequests: 40000,
		MemoriesMB:     []int{8, 16, 32, 64},
	})

	fmt.Println("Reproducing Figure 2 (Calgary panel, reduced scale)...")
	fig := h.Figure2(trace.Calgary, 8)
	fmt.Println(fig.Format())

	l2s := fig.SeriesFor(experiments.VariantL2S)
	master := fig.SeriesFor(experiments.VariantMaster)
	basic := fig.SeriesFor(experiments.VariantBasic)
	fmt.Println("§5 check: cc-master vs l2s, cc-basic vs l2s")
	for i, mem := range l2s.X {
		fmt.Printf("  %3d MB/node: master/l2s = %4.0f%%   basic/l2s = %4.0f%%\n",
			mem, 100*master.Y[i]/l2s.Y[i], 100*basic.Y[i]/l2s.Y[i])
	}
	fmt.Println("\nExpected shape: basic well below l2s; master close to (or matching) l2s.")
}
